open Cubicle

type config =
  | Linux
  | Unikraft
  | Genode3 of Kernel.t
  | Genode4 of Kernel.t
  | Cubicle3
  | Cubicle4

let config_name = function
  | Linux -> "Linux"
  | Unikraft -> "Unikraft"
  | Genode3 k -> "Genode-3/" ^ k.Kernel.name
  | Genode4 k -> "Genode-4/" ^ k.Kernel.name
  | Cubicle3 -> "CubicleOS-3"
  | Cubicle4 -> "CubicleOS-4"

type instance = { os : Minidb.Os_iface.t; mon : Monitor.t }

(* --- the Genode file system service ------------------------------------- *)

type gfile = { mutable data : Bytes.t; mutable size : int }

let ggrow f want =
  if Bytes.length f.data < want then begin
    let ndata = Bytes.make (max want (2 * Bytes.length f.data + 4096)) '\000' in
    Bytes.blit f.data 0 ndata 0 f.size;
    f.data <- ndata
  end

let packet_size = Hw.Addr.page_size

(* In the 3-component deployment Genode's VFS (with the built-in RAMFS
   plugin) is a library inside the application component, so a file
   system operation costs only the framework's dispatch overhead. *)
let genode_lib_op_cycles = 1_950

(* Charge the CORE <-> RAMFS packet-stream protocol of the 4-component
   deployment: one RPC submission and one completion signal per packet,
   plus the packet's copy through the shared buffer in each direction. *)
let charge_backend backend_rpc len =
  match backend_rpc with
  | None -> ()
  | Some rpc ->
      let packets = max 1 ((len + packet_size - 1) / packet_size) in
      for _ = 1 to packets do
        Rpc.call rpc ~payload:(min len packet_size) (fun () -> ());
        Rpc.signal rpc
      done

let genode_os kern ~split ctx =
  let session = Rpc.create ctx kern in
  let backend_rpc = if split then Some (Rpc.create ctx kern) else None in
  (* split:false -> library VFS: flat framework overhead, no kernel IPC *)
  let session_call payload f =
    if split then Rpc.call session ~payload f
    else begin
      Hw.Cost.charge_cat (Hw.Cpu.cost ctx.Monitor.cpu) Telemetry.Attrib.Ipc
        genode_lib_op_cycles;
      f ()
    end
  in
  let files : (string, gfile) Hashtbl.t = Hashtbl.create 16 in
  let fds : (int, gfile) Hashtbl.t = Hashtbl.create 16 in
  let next_fd = ref 3 in
  let cpu = ctx.Monitor.cpu in
  let meta_call f = session_call 32 (fun () -> charge_backend backend_rpc 32; f ()) in
  {
    Minidb.Os_iface.ctx;
    open_file =
      (fun path ~create ->
        meta_call (fun () ->
            match Hashtbl.find_opt files path with
            | Some f ->
                let fd = !next_fd in
                incr next_fd;
                Hashtbl.replace fds fd f;
                fd
            | None ->
                if not create then Libos.Sysdefs.enoent
                else begin
                  let f = { data = Bytes.create 4096; size = 0 } in
                  Hashtbl.replace files path f;
                  let fd = !next_fd in
                  incr next_fd;
                  Hashtbl.replace fds fd f;
                  fd
                end));
    close_file =
      (fun fd ->
        meta_call (fun () ->
            if Hashtbl.mem fds fd then (Hashtbl.remove fds fd; 0) else Libos.Sysdefs.ebadf));
    pread =
      (fun ~fd ~buf ~len ~off ->
        session_call 32 (fun () ->
            match Hashtbl.find_opt fds fd with
            | None -> Libos.Sysdefs.ebadf
            | Some f ->
                if off >= f.size then 0
                else begin
                  let n = min len (f.size - off) in
                  (* backend -> CORE (packet stream when split) *)
                  charge_backend backend_rpc n;
                  (* file store -> session buffer -> application *)
                  if split then Rpc.copy_in session (Bytes.sub f.data off n);
                  Hw.Cpu.write_bytes cpu buf (Bytes.sub f.data off n);
                  n
                end));
    pwrite =
      (fun ~fd ~buf ~len ~off ->
        session_call 32 (fun () ->
            match Hashtbl.find_opt fds fd with
            | None -> Libos.Sysdefs.ebadf
            | Some f ->
                ggrow f (off + len);
                let data = Hw.Cpu.read_bytes cpu buf len in
                if split then Rpc.copy_in session data;
                charge_backend backend_rpc len;
                Bytes.blit data 0 f.data off len;
                f.size <- max f.size (off + len);
                len));
    file_size =
      (fun fd ->
        meta_call (fun () ->
            match Hashtbl.find_opt fds fd with
            | None -> Libos.Sysdefs.ebadf
            | Some f -> f.size));
    truncate =
      (fun ~fd ~size ->
        meta_call (fun () ->
            match Hashtbl.find_opt fds fd with
            | None -> Libos.Sysdefs.ebadf
            | Some f ->
                ggrow f size;
                if size < f.size then Bytes.fill f.data size (f.size - size) '\000';
                f.size <- size;
                0));
    fsync = (fun _fd -> meta_call (fun () -> 0));
    unlink =
      (fun path ->
        meta_call (fun () ->
            if Hashtbl.mem files path then (Hashtbl.remove files path; 0)
            else Libos.Sysdefs.enoent));
    exists = (fun path -> meta_call (fun () -> if Hashtbl.mem files path then 1 else 0) = 1);
    rename =
      (fun ~old_name ~new_name ->
        meta_call (fun () ->
            match Hashtbl.find_opt files old_name with
            | None -> Libos.Sysdefs.enoent
            | Some f ->
                Hashtbl.remove files old_name;
                Hashtbl.replace files new_name f;
                0));
  }

(* --- configuration instances ----------------------------------------------- *)

let plain_app_system mem_bytes =
  let mon = Monitor.create ~protection:Types.None_ ~mem_bytes () in
  let cid =
    Monitor.create_cubicle mon ~name:"APP" ~kind:Types.Isolated ~heap_pages:512
      ~stack_pages:4
  in
  (mon, Monitor.ctx_for mon cid)

(* the application cubicle carries the paper's name for it *)
let cubicle_system mem_bytes ~merge_fs =
  let app = Builder.component ~heap_pages:512 ~stack_pages:4 "SQLITE" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.Full ~merge_fs ~mem_bytes
      ~extra:[ (app, Types.Isolated) ]
      ()
  in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "SQLITE")) in
  { os; mon = sys.Libos.Boot.mon }

let unikraft_system mem_bytes =
  let app = Builder.component ~heap_pages:512 ~stack_pages:4 "SQLITE" in
  let sys =
    Libos.Boot.fs_stack ~protection:Types.None_ ~mem_bytes
      ~extra:[ (app, Types.Isolated) ]
      ()
  in
  let os = Minidb.Os_iface.cubicleos (Libos.Fileio.make (Libos.Boot.app_ctx sys "SQLITE")) in
  { os; mon = sys.Libos.Boot.mon }

let make ?(mem_bytes = 192 * 1024 * 1024) = function
  | Linux ->
      let mon, ctx = plain_app_system mem_bytes in
      { os = Minidb.Os_iface.linux ctx; mon }
  | Unikraft -> unikraft_system mem_bytes
  | Genode3 k ->
      let mon, ctx = plain_app_system mem_bytes in
      { os = genode_os k ~split:false ctx; mon }
  | Genode4 k ->
      let mon, ctx = plain_app_system mem_bytes in
      { os = genode_os k ~split:true ctx; mon }
  | Cubicle3 -> cubicle_system mem_bytes ~merge_fs:true
  | Cubicle4 -> cubicle_system mem_bytes ~merge_fs:false

let speedtest_run ?(n = 200) inst =
  let cost = Monitor.cost inst.mon in
  Minidb.Speedtest.run_all inst.os ~path:"/speed.db" ~n ~measure:(fun f ->
      let c0 = Hw.Cost.cycles cost in
      f ();
      Hw.Cost.cycles cost - c0)

let speedtest_per_query ?n config = speedtest_run ?n (make config)

let speedtest_total_cycles ?n config =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (speedtest_per_query ?n config)
