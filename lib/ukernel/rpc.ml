open Cubicle

type t = {
  ctx : Monitor.ctx;
  kern : Kernel.t;
  buf : int;  (* one-page message buffer *)
  mutable rpcs : int;
}

let msg_buf_size = Hw.Addr.page_size

let create ctx kern =
  { ctx; kern; buf = Api.malloc_page_aligned ctx msg_buf_size; rpcs = 0 }

let kernel t = t.kern
let buffer_addr t = t.buf
let rpc_count t = t.rpcs

let cost t = Monitor.cost t.ctx.Monitor.mon

let charge_copy t len =
  (* payload larger than the message buffer is sent in bursts *)
  Hw.Cost.charge_mem (cost t) (max 0 len)

(* An RPC round trip crosses from the client component into the OS
   service and back — modelled for the latency plane as an edge into
   the monitor cubicle (the "kernel side"), so `fig10 --latency` can
   compare RPC crossing latencies against trampoline edges. *)
let bus t = Monitor.bus t.ctx.Monitor.mon

let call t ~payload f =
  t.rpcs <- t.rpcs + 1;
  Telemetry.Bus.observe_call (bus t) ~caller:t.ctx.Monitor.self
    ~callee:Monitor.monitor_cid;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Bus.observe_return (bus t) ~caller:t.ctx.Monitor.self
        ~callee:Monitor.monitor_cid)
    (fun () ->
      charge_copy t payload;
      Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Ipc t.kern.Kernel.rpc_cycles;
      let r = f () in
      charge_copy t payload;
      r)

let signal t = Hw.Cost.charge_cat (cost t) Telemetry.Attrib.Ipc t.kern.Kernel.signal_cycles

let copy_in t data =
  let len = min (Bytes.length data) msg_buf_size in
  Hw.Cpu.priv_write_bytes t.ctx.Monitor.cpu t.buf (Bytes.sub data 0 len);
  if Bytes.length data > len then charge_copy t (Bytes.length data - len)

let copy_out t len =
  let n = min len msg_buf_size in
  let b = Hw.Cpu.priv_read_bytes t.ctx.Monitor.cpu t.buf n in
  if len > n then charge_copy t (len - n);
  b
