open Cubicle

type comp = {
  name : string;
  cid : Types.cid;
  kind : Types.kind;
  exports : string list;
  iface : Iface.t;
}

type program = {
  comps : comp list;
  has_thunk : string -> bool;
  has_guard : Types.cid -> string -> bool;
}

let init_sym = "__init"

let find p name = List.find_opt (fun c -> c.name = name) p.comps

let owner_of p sym =
  List.find_opt (fun c -> List.mem sym c.exports) p.comps

let summary (c : comp) sym = List.find_opt (fun fd -> fd.Iface.fd_sym = sym) c.iface

let init_decl c = summary c init_sym

let of_built (b : Builder.built) =
  let mon = b.Builder.mon in
  let comps =
    List.map
      (fun (name, cid) ->
        {
          name;
          cid;
          kind = Monitor.cubicle_kind mon cid;
          exports = Monitor.exports_of mon cid;
          iface = (try List.assoc name b.Builder.ifaces with Not_found -> []);
        })
      b.Builder.cids
  in
  {
    comps;
    has_thunk = Trampoline.has_thunk b.Builder.trampolines;
    has_guard = Trampoline.has_guard b.Builder.trampolines;
  }

(* Synthetic programs for tests and the qcheck generators: trampoline
   installation is simulated (isolated/trusted exports get thunks, every
   isolated cubicle gets guards), minus explicitly missing entries —
   the injection points for the seeded broken examples. *)
let make ?(missing_thunks = []) ?(missing_guards = []) comps =
  let comps =
    List.mapi
      (fun i (name, kind, exports, iface) -> { name; cid = i + 1; kind; exports; iface })
      comps
  in
  let thunked sym =
    List.exists
      (fun c ->
        (match c.kind with Types.Isolated | Types.Trusted -> true | Types.Shared -> false)
        && List.mem sym c.exports)
      comps
    && not (List.mem sym missing_thunks)
  in
  let guarded cid sym =
    thunked sym
    &&
    match List.find_opt (fun c -> c.cid = cid) comps with
    | Some c -> not (List.mem (c.name, sym) missing_guards)
    | None -> false
  in
  { comps; has_thunk = thunked; has_guard = guarded }
