type severity = Critical | High | Medium | Info
type plane = Static | Dynamic

type finding = {
  pass : string;
  severity : severity;
  plane : plane;
  component : string;
  detail : string;
  key : string;
  count : int;
}

let severity_name = function
  | Critical -> "critical"
  | High -> "high"
  | Medium -> "medium"
  | Info -> "info"

let severity_rank = function Critical -> 0 | High -> 1 | Medium -> 2 | Info -> 3
let plane_name = function Static -> "static" | Dynamic -> "dynamic"

let make ~pass ~severity ~plane ~component ~detail ~key =
  { pass; severity; plane; component; detail; key; count = 1 }

(* Stable order for tables, JSON and diffs: severity first, then key. *)
let sort fs =
  List.sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> compare a.key b.key
      | c -> c)
    fs

(* Identical findings (same key) collapse to the first occurrence, with
   [count] summed — "RAMFS leaked its chunk window (x12)" instead of
   twelve rows. [baseline_counts] sums counts, so the baseline is
   invariant under dedup. *)
let dedup fs =
  let totals = Hashtbl.create 32 in
  List.iter
    (fun f ->
      Hashtbl.replace totals f.key
        (f.count + Option.value ~default:0 (Hashtbl.find_opt totals f.key)))
    fs;
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun f ->
      if Hashtbl.mem seen f.key then None
      else begin
        Hashtbl.replace seen f.key ();
        Some { f with count = Hashtbl.find totals f.key }
      end)
    fs

let print_table ppf fs =
  match sort fs with
  | [] -> Format.fprintf ppf "  no findings@."
  | fs ->
      Format.fprintf ppf "  %-8s  %-7s  %-15s  %-10s  %s@." "SEVERITY" "PLANE" "PASS"
        "COMPONENT" "DETAIL";
      List.iter
        (fun f ->
          Format.fprintf ppf "  %-8s  %-7s  %-15s  %-10s  %s%s@."
            (String.uppercase_ascii (severity_name f.severity))
            (plane_name f.plane) f.pass f.component f.detail
            (if f.count > 1 then Printf.sprintf " (x%d)" f.count else ""))
        fs

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) fs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  \"%s\": %s,\n" k v)) extra;
  Buffer.add_string b "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"pass\": \"%s\", \"severity\": \"%s\", \"plane\": \"%s\", \
            \"component\": \"%s\", \"detail\": \"%s\", \"key\": \"%s\", \"count\": %d}"
           (json_escape f.pass)
           (severity_name f.severity)
           (plane_name f.plane) (json_escape f.component) (json_escape f.detail)
           (json_escape f.key) f.count))
    (sort fs);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Baseline format: the flat {"key": count} JSON the bench harness
   already reads and writes for golden cycle counts, keyed by finding
   key. Keys are address-free by construction, so the baseline is
   stable across runs and OCaml versions. *)
let baseline_counts fs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.key (f.count + Option.value ~default:0 (Hashtbl.find_opt tbl f.key)))
    fs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let diff_baseline ~baseline fs =
  let current = baseline_counts fs in
  let fresh =
    List.filter
      (fun (k, n) -> n > Option.value ~default:0 (List.assoc_opt k baseline))
      current
  in
  let resolved =
    List.filter
      (fun (k, n) -> n > Option.value ~default:0 (List.assoc_opt k current))
      baseline
  in
  (fresh, resolved)
