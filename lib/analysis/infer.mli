(** Trace-derived interface summaries: the cross-check against the
    hand-written ones.

    Folds a traced run's [Call]/[Return] frames and [Window_access]
    records into per-edge access-mode sets ("while serving [sym],
    component [C] read/wrote [O]'s memory") and compares them with the
    {!Iface} summaries the static planes trust. A summary that claims
    less than the trace observed is stale and fails the analyze gate
    like a stale golden file.

    Attribution follows trampoline frames per core; shared calls push
    no frame (shared code runs with the caller's privileges), matching
    the static accessors fixpoint. Accesses outside any frame are
    folded under {!toplevel_sym} and exempt from the cross-check. *)

type t

val toplevel_sym : string

val create : unit -> t

val feed : ?core:int -> t -> Telemetry.Event.t -> unit

val sink : t -> Telemetry.Bus.entry -> unit
(** Online variant for [Bus.set_sink] — can share the bus sink with
    {!Replay.online_sink} via a fan-out closure. *)

val run : t -> Telemetry.Bus.entry list -> unit

type observation = {
  o_comp : string;
  o_sym : string;
  o_owner : string;
  o_read : bool;
  o_write : bool;
}

val observations : t -> Ir.program -> observation list
(** The folded per-edge modes, resolved to component names via the
    program's cid assignment; sorted, deterministic. Actors or owners
    with no matching component (e.g. the monitor) are dropped. *)

val check : t -> Ir.program -> Report.finding list
(** Cross-check: observed write with no declared written pointer
    argument → [Critical] [summary:write:COMP.sym]; observed read with
    no declared dereference at all → [High] [summary:read:COMP.sym].
    The converse (a declared access never observed) is {e not} flagged:
    one trace need not exercise every path. *)

val of_bus : Telemetry.Bus.t -> Ir.program -> Report.finding list
(** Fold the bus ring and cross-check in one step. *)
