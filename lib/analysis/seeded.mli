(** Deliberately-broken examples, one per detector.

    Each scenario runs CubiCheck against a seeded violation and records
    the findings plus the pass/severity it must trip. The bench
    [analyze] command and the test suite both fail if any scenario goes
    uncaught — the analyzer's own regression harness. *)

type scenario = {
  sc_name : string;
  expect_pass : string;
  expect_severity : Report.severity;
  findings : Report.finding list;
}

val caught : scenario -> bool

val missing_trampoline : unit -> scenario
(** static, [Critical] *)

val uncovered_pointer : unit -> scenario
(** static, [High] *)

val leaked_window : unit -> scenario
(** static, [High] *)

val ro_write : unit -> scenario
(** static, [Critical] — a summary-declared write reachable only
    through a read-only grant *)

val write_race : unit -> scenario
(** dynamic, [High] *)

val use_after_close : unit -> scenario
(** dynamic, [Critical] *)

val write_through_ro : unit -> scenario
(** dynamic, [Critical] — caught by the {e online} sink
    ({!Replay.online_sink}), not post-hoc replay *)

val all : unit -> scenario list
