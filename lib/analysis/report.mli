(** CubiCheck findings: the common currency of every pass.

    A finding's [key] is its stable identity — address-free and
    deterministic, so the checked-in baseline survives re-runs, ASLR of
    the simulated allocator, and OCaml version changes. The baseline
    itself is the bench suite's flat [{"key": count}] JSON format. *)

type severity = Critical | High | Medium | Info
type plane = Static | Dynamic

type finding = {
  pass : string;  (** "trampoline" | "coverage" | "leak" | "race" | "use-after-close" | … *)
  severity : severity;
  plane : plane;
  component : string;  (** source component the fix belongs to *)
  detail : string;  (** human-readable one-liner *)
  key : string;  (** stable dedup / baseline key *)
  count : int;  (** occurrences collapsed by {!dedup}; [make] sets 1 *)
}

val severity_name : severity -> string
val severity_rank : severity -> int
(** 0 = most severe. *)

val plane_name : plane -> string

val make :
  pass:string ->
  severity:severity ->
  plane:plane ->
  component:string ->
  detail:string ->
  key:string ->
  finding

val sort : finding list -> finding list
(** Severity-major, key-minor — the canonical order everywhere. *)

val dedup : finding list -> finding list
(** Keep the first finding per key (input order), with [count] summed
    over all occurrences of that key. {!baseline_counts} sums counts,
    so a baseline computed before and after [dedup] is identical. *)

val print_table : Format.formatter -> finding list -> unit

val to_json : ?extra:(string * string) list -> finding list -> string
(** ANALYSIS.json body; [extra] prepends top-level fields (already
    rendered as JSON values). *)

val baseline_counts : finding list -> (string * int) list
(** Key → occurrence count, sorted — what gets written as the baseline. *)

val diff_baseline :
  baseline:(string * int) list -> finding list -> (string * int) list * (string * int) list
(** [(fresh, resolved)]: keys whose count exceeds the baseline (CI
    failure) and baseline keys no longer present at their count (prompt
    to re-baseline). *)
