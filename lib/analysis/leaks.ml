open Cubicle

module SMap = Map.Make (String)

(* Window-leak detection (may-analysis): a grant added on some path and
   not removed (or its window destroyed) before the export returns keeps
   the peer's access alive across calls — the standing-leak hazard of
   user-managed ACLs (paper Table 1). Grants marked [standing] are
   deliberate (staging buffers) and exempt.

   Status lattice: [Live_all] — the grant is live on every path;
   [Live_some] — live on at least one path. End-of-body [Live_all] is a
   High finding, [Live_some] a Medium one (some path cleans up).
   Read-only leaks are demoted one severity (High→Medium, Medium→Info):
   a leaked R grant discloses the buffer but cannot be used to corrupt
   it, so RW leaks must sort first. *)

type status = Live_all | Live_some

type state = (status * bool (* rw *)) SMap.t  (* "win\x00buf" -> status *)

let key win buf =
  let b = match buf with Iface.Param i -> Printf.sprintf "arg%d" i | Iface.Local s -> s in
  win ^ "\x00" ^ b

let pretty k =
  match String.index_opt k '\x00' with
  | Some i ->
      Printf.sprintf "%s/%s" (String.sub k 0 i)
        (String.sub k (i + 1) (String.length k - i - 1))
  | None -> k

let join (a : state) (b : state) =
  SMap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (Live_all, r1), Some (Live_all, r2) -> Some (Live_all, r1 || r2)
      | Some (_, r1), Some (_, r2) -> Some (Live_some, r1 || r2)
      | (Some (_, r), None | None, Some (_, r)) -> Some (Live_some, r)
      | None, None -> None)
    a b

let rec exec (state : state) stmts =
  List.fold_left
    (fun (state : state) (s : Iface.stmt) ->
      match s with
      | Iface.Window_add { win; buf; standing; rw; _ } ->
          if standing then state else SMap.add (key win buf) (Live_all, rw) state
      | Iface.Window_remove { win; buf } -> SMap.remove (key win buf) state
      | Iface.Window_destroy { win } ->
          SMap.filter (fun k _ -> not (String.length k > String.length win
                                       && String.sub k 0 (String.length win) = win
                                       && k.[String.length win] = '\x00')) state
      | Iface.Branch arms -> (
          match List.map (exec state) arms with
          | [] -> state
          | s :: rest -> List.fold_left join s rest)
      | Iface.Loop body ->
          (* zero-or-more iterations: anything the body leaves live is
             live on some path *)
          join state (exec state body)
      | _ -> state)
    state stmts

let check (p : Ir.program) =
  let findings = ref [] in
  List.iter
    (fun (c : Ir.comp) ->
      List.iter
        (fun (fd : Iface.fundecl) ->
          let here = Printf.sprintf "%s.%s" c.Ir.name fd.Iface.fd_sym in
          let out = exec SMap.empty fd.Iface.fd_body in
          SMap.iter
            (fun k (st, rw) ->
              let severity, tag =
                match (st, rw) with
                | Live_all, true -> (Report.High, "leak")
                | Live_some, true -> (Report.Medium, "leak:partial")
                (* R-only leaks demoted: disclosure, not corruption *)
                | Live_all, false -> (Report.Medium, "leak")
                | Live_some, false -> (Report.Info, "leak:partial")
              in
              findings :=
                Report.make ~pass:"leak" ~severity ~plane:Report.Static
                  ~component:c.Ir.name
                  ~detail:
                    (Printf.sprintf
                       "%s leaves %s grant %s live %s — the peer retains %s after \
                        return"
                       here
                       (if rw then "RW" else "read-only")
                       (pretty k)
                       (match st with
                       | Live_all -> "on every path"
                       | Live_some -> "on some path")
                       (if rw then "write access" else "read access"))
                  ~key:(Printf.sprintf "%s:%s:%s" tag here (pretty k))
                :: !findings)
            out)
        c.Ir.iface)
    p.Ir.comps;
  Report.dedup (List.rev !findings)
