open Cubicle

module ISet = Set.Make (Int)

(* The replay mirror: a shadow copy of every cubicle's window ACL
   state, reconstructed purely from Window telemetry events (optionally
   seeded from a live monitor when the trace starts mid-run). Accesses
   are then judged against the *intended* ACL state rather than the
   lazily-retagged MPK tags the simulated hardware holds — which is
   exactly where causal revocation (paper §5.6) and missing
   happens-before edges hide. *)

type mwin = {
  owner : int;
  mutable ranges : (int * int) list;  (* (ptr, size) *)
  mutable opened : ISet.t;
  mutable alive : bool;
}

type t = {
  wins : (int * int, mwin) Hashtbl.t;  (* (owner, wid) -> window *)
  races : Races.t;
}

let create ~name_of = { wins = Hashtbl.create 32; races = Races.create ~name_of }

let seed_from_monitor t mon =
  for cid = 0 to Monitor.ncubicles mon - 1 do
    List.iter
      (fun (w : Window.t) ->
        Hashtbl.replace t.wins (cid, w.Window.wid)
          {
            owner = cid;
            ranges = List.map (fun (r : Window.range) -> (r.ptr, r.size)) w.Window.ranges;
            opened = ISet.of_list (Bitset.elements w.Window.opened);
            alive = true;
          })
      (Window.live_windows (Monitor.windows_of mon cid))
  done

let covered t ~owner ~page ~cid =
  Hashtbl.fold
    (fun (o, _) w acc ->
      acc
      || o = owner && w.alive
         && ISet.mem cid w.opened
         && List.exists
              (fun (ptr, size) ->
                size > 0
                && Hw.Addr.page_of ptr <= page
                && page <= Hw.Addr.page_of (ptr + size - 1))
              w.ranges)
    t.wins false

let get_win t owner wid =
  match Hashtbl.find_opt t.wins (owner, wid) with
  | Some w -> w
  | None ->
      let w = { owner; ranges = []; opened = ISet.empty; alive = true } in
      Hashtbl.replace t.wins (owner, wid) w;
      w

let feed ?(core = 0) t (ev : Telemetry.Event.t) =
  match ev with
  (* trampoline crossings and scheduler switches are happens-before
     edges on the core they run on *)
  | Telemetry.Event.Call _ | Telemetry.Event.Return _ | Telemetry.Event.Sched_switch _ ->
      Races.crossing ~core t.races
  | Telemetry.Event.Window { cid; op; wid; peer; ptr; size } -> (
      let w = get_win t cid wid in
      match op with
      | Telemetry.Event.Init -> w.ranges <- []; w.opened <- ISet.empty; w.alive <- true
      | Telemetry.Event.Extend -> ()
      | Telemetry.Event.Add -> w.ranges <- (ptr, size) :: w.ranges
      | Telemetry.Event.Remove ->
          (* remove the first range rooted at ptr, mirroring
             Window.remove_range *)
          let removed = ref false in
          w.ranges <-
            List.filter
              (fun (p, _) ->
                if (not !removed) && p = ptr then (removed := true; false) else true)
              w.ranges
      | Telemetry.Event.Open | Telemetry.Event.Forward | Telemetry.Event.Open_dedicated ->
          (* a forward is emitted against the owner's window, so the
             mirror treats it as the owner opening for one more peer *)
          if peer >= 0 then w.opened <- ISet.add peer w.opened
      | Telemetry.Event.Close | Telemetry.Event.Close_dedicated ->
          if peer >= 0 then w.opened <- ISet.remove peer w.opened
      | Telemetry.Event.Close_all -> w.opened <- ISet.empty
      | Telemetry.Event.Destroy -> w.alive <- false)
  | Telemetry.Event.Window_access { cid; owner; page; access } ->
      Races.access ~core t.races ~cid ~owner ~page ~access
        ~covered:(covered t ~owner ~page ~cid)
  | _ -> ()

let run t entries =
  List.iter
    (fun (e : Telemetry.Bus.entry) -> feed ~core:e.Telemetry.Bus.core t e.Telemetry.Bus.ev)
    entries

let findings t = Races.findings t.races

let of_bus ?monitor bus ~name_of =
  let t = create ~name_of in
  (match monitor with Some m -> seed_from_monitor t m | None -> ());
  run t (Telemetry.Bus.events bus);
  findings t
