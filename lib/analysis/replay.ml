open Cubicle

module ISet = Set.Make (Int)

(* The replay mirror: a shadow copy of every cubicle's window ACL
   state, reconstructed purely from Window telemetry events (optionally
   seeded from a live monitor when the trace starts mid-run). Accesses
   are then judged against the *intended* ACL state rather than the
   lazily-retagged MPK tags the simulated hardware holds — which is
   exactly where causal revocation (paper §5.6) and missing
   happens-before edges hide. *)

type mrange = { r_ptr : int; r_size : int; mutable r_rw : bool }

type mwin = {
  owner : int;
  mutable ranges : mrange list;
  mutable opened : ISet.t;
  mutable alive : bool;
}

type t = {
  wins : (int * int, mwin) Hashtbl.t;  (* (owner, wid) -> window *)
  phys_cid : (int, int) Hashtbl.t;  (* physical tag -> cubicle bound to it *)
  last_phys : (int, int) Hashtbl.t;  (* evicted cubicle -> tag it lost *)
  races : Races.t;
}

let create ~name_of =
  {
    wins = Hashtbl.create 32;
    phys_cid = Hashtbl.create 16;
    last_phys = Hashtbl.create 16;
    races = Races.create ~name_of;
  }

let seed_from_monitor t mon =
  List.iter
    (fun cid ->
      List.iter
        (fun (w : Window.t) ->
          Hashtbl.replace t.wins (cid, w.Window.wid)
            {
              owner = cid;
              ranges =
                List.map
                  (fun (r : Window.range) ->
                    { r_ptr = r.ptr; r_size = r.size; r_rw = r.perm = Window.RW })
                  w.Window.ranges;
              opened = ISet.of_list (Bitset.elements w.Window.opened);
              alive = true;
            })
        (Window.live_windows (Monitor.windows_of mon cid)))
    (Monitor.live_cids mon);
  match Monitor.keymux mon with
  | None -> ()
  | Some km ->
      List.iter
        (fun (phys, vkey) ->
            match Hw.Keymux.cid_of_vkey km vkey with
            | Some cid -> Hashtbl.replace t.phys_cid phys cid
            | None -> ())
        (Hw.Keymux.residents km)

let range_touches_page r page =
  r.r_size > 0
  && Hw.Addr.page_of r.r_ptr <= page
  && page <= Hw.Addr.page_of (r.r_ptr + r.r_size - 1)

(* Judge one page access against the mirrored ACLs: [covered] — some
   live window of [owner], open for [cid], has a range touching the
   page; [write_allowed] — some such range is RW. (Enforcement is per
   page, like the monitor's retag granularity.) *)
let judge t ~owner ~page ~cid =
  Hashtbl.fold
    (fun (o, _) w ((cov, wr) as acc) ->
      if (cov && wr) || o <> owner || (not w.alive) || not (ISet.mem cid w.opened) then acc
      else
        List.fold_left
          (fun (cov, wr) r ->
            if range_touches_page r page then (true, wr || r.r_rw) else (cov, wr))
          acc w.ranges)
    t.wins (false, false)

let get_win t owner wid =
  match Hashtbl.find_opt t.wins (owner, wid) with
  | Some w -> w
  | None ->
      let w = { owner; ranges = []; opened = ISet.empty; alive = true } in
      Hashtbl.replace t.wins (owner, wid) w;
      w

let feed ?(core = 0) t (ev : Telemetry.Event.t) =
  match ev with
  (* trampoline crossings and scheduler switches are happens-before
     edges on the core they run on *)
  | Telemetry.Event.Call _ | Telemetry.Event.Return _ | Telemetry.Event.Sched_switch _ ->
      Races.crossing ~core t.races
  | Telemetry.Event.Window { cid; op; wid; peer; ptr; size; rw } -> (
      let w = get_win t cid wid in
      match op with
      | Telemetry.Event.Init -> w.ranges <- []; w.opened <- ISet.empty; w.alive <- true
      | Telemetry.Event.Extend -> ()
      | Telemetry.Event.Add -> w.ranges <- { r_ptr = ptr; r_size = size; r_rw = rw } :: w.ranges
      | Telemetry.Event.Remove ->
          (* remove the first range rooted at ptr, mirroring
             Window.remove_range *)
          let removed = ref false in
          w.ranges <-
            List.filter
              (fun r ->
                if (not !removed) && r.r_ptr = ptr then (removed := true; false) else true)
              w.ranges
      | Telemetry.Event.Downgrade ->
          (* downgrade the first range rooted at ptr, mirroring
             Window.downgrade_range *)
          let rec first = function
            | [] -> ()
            | r :: _ when r.r_ptr = ptr -> r.r_rw <- false
            | _ :: rest -> first rest
          in
          first w.ranges
      | Telemetry.Event.Open | Telemetry.Event.Forward | Telemetry.Event.Open_dedicated ->
          (* a forward is emitted against the owner's window, so the
             mirror treats it as the owner opening for one more peer *)
          if peer >= 0 then w.opened <- ISet.add peer w.opened
      | Telemetry.Event.Close | Telemetry.Event.Close_dedicated ->
          if peer >= 0 then w.opened <- ISet.remove peer w.opened
      | Telemetry.Event.Close_all -> w.opened <- ISet.empty
      | Telemetry.Event.Destroy -> w.alive <- false)
  (* The virtual->physical key plane: residency moves with fault-ins
     and evictions so a recycled tag can be told apart from a live
     grant. A correct eviction retags the victim's pages, so an
     uncovered access that lines up with a recycled binding means the
     scrub was skipped — the key-alias hole, invisible to MPK. *)
  | Telemetry.Event.Key_fault_in { cid; phys; _ } ->
      Hashtbl.replace t.phys_cid phys cid;
      Hashtbl.remove t.last_phys cid
  | Telemetry.Event.Key_evict { cid; phys; _ } ->
      Hashtbl.remove t.phys_cid phys;
      Hashtbl.replace t.last_phys cid phys
  | Telemetry.Event.Window_access { cid; owner; page; access } -> (
      let covered, write_allowed = judge t ~owner ~page ~cid in
      match Hashtbl.find_opt t.last_phys owner with
      | Some p when (not covered) && Hashtbl.find_opt t.phys_cid p = Some cid ->
          Races.key_alias t.races ~cid ~owner ~phys:p
      | _ -> Races.access ~core t.races ~cid ~owner ~page ~access ~covered ~write_allowed)
  | _ -> ()

let run t entries =
  List.iter
    (fun (e : Telemetry.Bus.entry) -> feed ~core:e.Telemetry.Bus.core t e.Telemetry.Bus.ev)
    entries

(* The online race gate: attach with [Bus.set_sink bus (Some
   (Replay.online_sink t))] and the mirror runs concurrently with the
   workload, judging each access as it is emitted — no ring capacity
   limit, no post-hoc replay. Sinks are tracing-gated and never charge
   simulated cycles, so the soak's performance goldens are unaffected. *)
let online_sink t (e : Telemetry.Bus.entry) = feed ~core:e.Telemetry.Bus.core t e.Telemetry.Bus.ev

let findings t = Races.findings t.races

let of_bus ?monitor bus ~name_of =
  let t = create ~name_of in
  (match monitor with Some m -> seed_from_monitor t m | None -> ());
  run t (Telemetry.Bus.events bus);
  findings t
