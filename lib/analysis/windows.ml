open Cubicle

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* --- interprocedural accessors --------------------------------------- *)

(* accessors (sym, idx) = the components that may dereference the [idx]th
   argument of [sym], transitively: the owner itself when the summary
   declares the deref, plus — when the owner forwards the argument as a
   pointer to another call — the accessors of the forwarded position.
   Forwarding to a *shared* component adds the forwarder itself: shared
   code executes with the caller's privileges, so its dereferences are
   the forwarder's for isolation purposes (e.g. RAMFS handing an
   application buffer to the shared libc memcpy). *)
let accessors (p : Ir.program) =
  let tbl : (string * int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let get k = Option.value ~default:SSet.empty (Hashtbl.find_opt tbl k) in
  let changed = ref true in
  let update k v =
    let cur = get k in
    let v' = SSet.union cur v in
    if not (SSet.equal cur v') then begin
      Hashtbl.replace tbl k v';
      changed := true
    end
  in
  let rec walk_stmts owner sym stmts =
    List.iter
      (fun (s : Iface.stmt) ->
        match s with
        | Iface.Call { sym = s2; ptr_args } ->
            List.iter
              (fun (j, buf, _) ->
                match buf with
                | Iface.Param idx -> (
                    match Ir.owner_of p s2 with
                    | Some o2 when o2.Ir.kind = Types.Shared ->
                        update (sym, idx) (SSet.singleton owner)
                    | Some _ -> update (sym, idx) (get (s2, j))
                    | None -> ())
                | Iface.Local _ -> ())
              ptr_args
        | Iface.Branch arms -> List.iter (walk_stmts owner sym) arms
        | Iface.Loop body -> walk_stmts owner sym body
        | _ -> ())
      stmts
  in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Ir.comp) ->
        List.iter
          (fun (fd : Iface.fundecl) ->
            List.iter
              (fun idx -> update (fd.Iface.fd_sym, idx) (SSet.singleton c.Ir.name))
              fd.Iface.fd_derefs;
            walk_stmts c.Ir.name fd.Iface.fd_sym fd.Iface.fd_body)
          c.Ir.iface)
      p.Ir.comps
  done;
  fun sym idx -> get (sym, idx)

(* --- must-state over window facts ------------------------------------ *)

type win = {
  grants : int SMap.t;  (* local buffer name -> granted bytes (max) *)
  opened : SSet.t;  (* peer component names; "*" = any *)
}

type state = win SMap.t

let join_win a b =
  {
    grants =
      SMap.merge
        (fun _ x y ->
          match (x, y) with Some n, Some m -> Some (min n m) | _ -> None)
        a.grants b.grants;
    opened = SSet.inter a.opened b.opened;
  }

let join (states : state list) =
  match states with
  | [] -> SMap.empty
  | s :: rest ->
      List.fold_left
        (fun acc s' ->
          SMap.merge
            (fun _ x y ->
              match (x, y) with Some a, Some b -> Some (join_win a b) | _ -> None)
            acc s')
        s rest

(* All Local buffer sizes declared anywhere in a component's summaries
   (Alloc statements), for resolving "bytes = 0 → the buffer's size". *)
let alloc_sizes (c : Ir.comp) =
  let tbl = Hashtbl.create 8 in
  let rec walk stmts =
    List.iter
      (fun (s : Iface.stmt) ->
        match s with
        | Iface.Alloc { buf; bytes } -> Hashtbl.replace tbl buf bytes
        | Iface.Branch arms -> List.iter walk arms
        | Iface.Loop body -> walk body
        | _ -> ())
      stmts
  in
  List.iter (fun (fd : Iface.fundecl) -> walk fd.Iface.fd_body) c.Ir.iface;
  tbl

let check (p : Ir.program) =
  let acc = accessors p in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let trusted name =
    match Ir.find p name with Some c -> c.Ir.kind = Types.Trusted | None -> false
  in
  List.iter
    (fun (c : Ir.comp) ->
      let sizes = alloc_sizes c in
      let check_call state here sym ptr_args =
        match Ir.owner_of p sym with
        | None -> ()  (* unresolved: the callgraph pass owns that finding *)
        | Some o2 when o2.Ir.kind = Types.Shared -> ()
        | Some _ ->
            List.iter
              (fun (j, buf, bytes) ->
                match buf with
                | Iface.Param _ -> ()  (* rolled up to this component's callers *)
                | Iface.Local b ->
                    let needed =
                      if bytes > 0 then bytes
                      else Option.value ~default:0 (Hashtbl.find_opt sizes b)
                    in
                    let accs =
                      acc sym j |> SSet.remove c.Ir.name
                      |> SSet.filter (fun d -> not (trusted d))
                    in
                    SSet.iter
                      (fun d ->
                        (* best grant for [b] among windows open for [d] *)
                        let granted = ref (-1) and open_best = ref (-1) in
                        SMap.iter
                          (fun _ w ->
                            match SMap.find_opt b w.grants with
                            | None -> ()
                            | Some n ->
                                granted := max !granted n;
                                if SSet.mem d w.opened || SSet.mem "*" w.opened then
                                  open_best := max !open_best n)
                          state;
                        if !granted < 0 then
                          add
                            (Report.make ~pass:"coverage" ~severity:Report.High
                               ~plane:Report.Static ~component:c.Ir.name
                               ~detail:
                                 (Printf.sprintf
                                    "%s passes %s to %s (arg %d) with no window grant \
                                     covering it (accessor %s)"
                                    here b sym j d)
                               ~key:
                                 (Printf.sprintf "coverage:no-grant:%s:%s:%d:%s" here sym j d))
                        else if !open_best < 0 then
                          add
                            (Report.make ~pass:"coverage" ~severity:Report.High
                               ~plane:Report.Static ~component:c.Ir.name
                               ~detail:
                                 (Printf.sprintf
                                    "%s passes %s to %s (arg %d) but no covering window \
                                     is open for accessor %s"
                                    here b sym j d)
                               ~key:
                                 (Printf.sprintf "coverage:not-open:%s:%s:%d:%s" here sym j d))
                        else if needed > 0 && !open_best < needed then
                          add
                            (Report.make ~pass:"coverage" ~severity:Report.High
                               ~plane:Report.Static ~component:c.Ir.name
                               ~detail:
                                 (Printf.sprintf
                                    "%s passes %s to %s (arg %d): grant covers %d of %d \
                                     bytes — %s faults at byte %d"
                                    here b sym j !open_best needed d !open_best)
                               ~key:
                                 (Printf.sprintf "coverage:partial:%s:%s:%d:%s" here sym j d)))
                      accs)
              ptr_args
      in
      let rec exec here (state : state) stmts =
        List.fold_left
          (fun (state : state) (s : Iface.stmt) ->
            match s with
            | Iface.Alloc _ | Iface.Direct_call _ -> state
            | Iface.Call { sym; ptr_args } ->
                check_call state here sym ptr_args;
                state
            | Iface.Window_add { win; buf = Iface.Local b; bytes; _ } ->
                let size =
                  if bytes > 0 then bytes
                  else Option.value ~default:0 (Hashtbl.find_opt sizes b)
                in
                let w =
                  Option.value
                    ~default:{ grants = SMap.empty; opened = SSet.empty }
                    (SMap.find_opt win state)
                in
                SMap.add win
                  { w with grants = SMap.add b (max size (Option.value ~default:0 (SMap.find_opt b w.grants))) w.grants }
                  state
            | Iface.Window_add _ -> state  (* Param-rooted grants: not representable *)
            | Iface.Window_remove { win; buf = Iface.Local b } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with grants = SMap.remove b w.grants } state)
            | Iface.Window_remove _ -> state
            | Iface.Window_open { win; peer } | Iface.Window_forward { win; peer } -> (
                (* a forward extends the open set exactly like an open by
                   the owner (the monitor emits it against the owner's
                   window) *)
                match SMap.find_opt win state with
                | None ->
                    SMap.add win
                      { grants = SMap.empty; opened = SSet.singleton peer }
                      state
                | Some w -> SMap.add win { w with opened = SSet.add peer w.opened } state)
            | Iface.Window_close { win; peer } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with opened = SSet.remove peer w.opened } state)
            | Iface.Window_close_all { win } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with opened = SSet.empty } state)
            | Iface.Window_destroy { win } -> SMap.remove win state
            | Iface.Branch arms -> join (List.map (exec here state) arms)
            | Iface.Loop body ->
                (* body may run zero times: facts established inside are
                   checked with the state at loop entry; the exit state
                   keeps only facts true on both paths *)
                join [ state; exec here state body ])
          state stmts
      in
      (* The component's init summary establishes the entry state of
         every export: standing staging windows, registration-time
         opens. *)
      let init_state =
        match Ir.init_decl c with
        | None -> SMap.empty
        | Some fd ->
            exec (Printf.sprintf "%s.%s" c.Ir.name Ir.init_sym) SMap.empty fd.Iface.fd_body
      in
      List.iter
        (fun (fd : Iface.fundecl) ->
          if fd.Iface.fd_sym <> Ir.init_sym then
            ignore
              (exec
                 (Printf.sprintf "%s.%s" c.Ir.name fd.Iface.fd_sym)
                 init_state fd.Iface.fd_body))
        c.Ir.iface)
    p.Ir.comps;
  Report.dedup (List.rev !findings)
