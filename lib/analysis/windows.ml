open Cubicle

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* --- interprocedural accessors --------------------------------------- *)

(* accessors (sym, idx) = the components that may touch the [idx]th
   argument of [sym], transitively: the owner itself when the summary
   declares the access, plus — when the owner forwards the argument as a
   pointer to another call — the accessors of the forwarded position.
   Forwarding to a *shared* component adds the forwarder itself: shared
   code executes with the caller's privileges, so its dereferences are
   the forwarder's for isolation purposes (e.g. RAMFS handing an
   application buffer to the shared libc memcpy).

   The fixpoint is computed twice with different seeds: once for any
   dereference ([fd_derefs] ∪ [fd_writes]) and once for writes only
   ([fd_writes]); for the write flavour a forward into shared code only
   counts when the shared declaration writes that position (memcpy
   writes arg 0 but merely reads arg 1). *)
let accessors_gen ~self_positions ~shared_forward (p : Ir.program) =
  let tbl : (string * int, SSet.t) Hashtbl.t = Hashtbl.create 64 in
  let get k = Option.value ~default:SSet.empty (Hashtbl.find_opt tbl k) in
  let changed = ref true in
  let update k v =
    let cur = get k in
    let v' = SSet.union cur v in
    if not (SSet.equal cur v') then begin
      Hashtbl.replace tbl k v';
      changed := true
    end
  in
  let rec walk_stmts owner sym stmts =
    List.iter
      (fun (s : Iface.stmt) ->
        match s with
        | Iface.Call { sym = s2; ptr_args } ->
            List.iter
              (fun (j, buf, _) ->
                match buf with
                | Iface.Param idx -> (
                    match Ir.owner_of p s2 with
                    | Some o2 when o2.Ir.kind = Types.Shared ->
                        if shared_forward o2 s2 j then
                          update (sym, idx) (SSet.singleton owner)
                    | Some _ -> update (sym, idx) (get (s2, j))
                    | None -> ())
                | Iface.Local _ -> ())
              ptr_args
        | Iface.Branch arms -> List.iter (walk_stmts owner sym) arms
        | Iface.Loop body -> walk_stmts owner sym body
        | _ -> ())
      stmts
  in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Ir.comp) ->
        List.iter
          (fun (fd : Iface.fundecl) ->
            List.iter
              (fun idx -> update (fd.Iface.fd_sym, idx) (SSet.singleton c.Ir.name))
              (self_positions fd);
            walk_stmts c.Ir.name fd.Iface.fd_sym fd.Iface.fd_body)
          c.Ir.iface)
      p.Ir.comps
  done;
  fun sym idx -> get (sym, idx)

let accessors p =
  accessors_gen
    ~self_positions:(fun fd -> fd.Iface.fd_derefs @ fd.Iface.fd_writes)
    ~shared_forward:(fun _ _ _ -> true)
    p

let write_accessors p =
  accessors_gen
    ~self_positions:(fun fd -> fd.Iface.fd_writes)
    ~shared_forward:(fun o2 s2 j ->
      match Ir.summary o2 s2 with
      | Some fd -> List.mem j fd.Iface.fd_writes
      | None -> false)
    p

(* --- must-state over window facts ------------------------------------ *)

type grant = { any_bytes : int; rw_bytes : int }
(* granted bytes for a buffer: through any grant, and through RW grants
   only (0 = no RW grant — writes through the window would be rejected
   or, worse, silently succeed on a read-first-retagged page). *)

type win = {
  grants : grant SMap.t;  (* local buffer name -> granted bytes (max) *)
  opened : SSet.t;  (* peer component names; "*" = any *)
}

type state = win SMap.t

let join_win a b =
  {
    grants =
      SMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some g, Some h ->
              Some
                {
                  any_bytes = min g.any_bytes h.any_bytes;
                  rw_bytes = min g.rw_bytes h.rw_bytes;
                }
          | _ -> None)
        a.grants b.grants;
    opened = SSet.inter a.opened b.opened;
  }

let join (states : state list) =
  match states with
  | [] -> SMap.empty
  | s :: rest ->
      List.fold_left
        (fun acc s' ->
          SMap.merge
            (fun _ x y ->
              match (x, y) with Some a, Some b -> Some (join_win a b) | _ -> None)
            acc s')
        s rest

(* All Local buffer sizes declared anywhere in a component's summaries
   (Alloc statements), for resolving "bytes = 0 → the buffer's size". *)
let alloc_sizes (c : Ir.comp) =
  let tbl = Hashtbl.create 8 in
  let rec walk stmts =
    List.iter
      (fun (s : Iface.stmt) ->
        match s with
        | Iface.Alloc { buf; bytes } -> Hashtbl.replace tbl buf bytes
        | Iface.Branch arms -> List.iter walk arms
        | Iface.Loop body -> walk body
        | _ -> ())
      stmts
  in
  List.iter (fun (fd : Iface.fundecl) -> walk fd.Iface.fd_body) c.Ir.iface;
  tbl

let check (p : Ir.program) =
  let acc = accessors p in
  let wacc = write_accessors p in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let trusted name =
    match Ir.find p name with Some c -> c.Ir.kind = Types.Trusted | None -> false
  in
  List.iter
    (fun (c : Ir.comp) ->
      let sizes = alloc_sizes c in
      (* over-privilege lint state: every RW Local grant site in this
         component, minus the buffers some external accessor actually
         writes through *)
      let rw_grant_sites : (string * string, string) Hashtbl.t = Hashtbl.create 8 in
      let written_bufs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let check_call state here sym ptr_args =
        match Ir.owner_of p sym with
        | None -> ()  (* unresolved: the callgraph pass owns that finding *)
        | Some o2 when o2.Ir.kind = Types.Shared -> ()
        | Some _ ->
            List.iter
              (fun (j, buf, bytes) ->
                match buf with
                | Iface.Param _ -> ()  (* rolled up to this component's callers *)
                | Iface.Local b ->
                    let needed =
                      if bytes > 0 then bytes
                      else Option.value ~default:0 (Hashtbl.find_opt sizes b)
                    in
                    let external_only s =
                      s |> SSet.remove c.Ir.name |> SSet.filter (fun d -> not (trusted d))
                    in
                    let accs = external_only (acc sym j) in
                    let waccs = external_only (wacc sym j) in
                    if not (SSet.is_empty waccs) then Hashtbl.replace written_bufs b ();
                    SSet.iter
                      (fun d ->
                        (* best grant for [b] among windows open for [d] *)
                        let granted = ref (-1) and open_best = ref (-1) in
                        let open_best_rw = ref (-1) in
                        SMap.iter
                          (fun _ w ->
                            match SMap.find_opt b w.grants with
                            | None -> ()
                            | Some g ->
                                granted := max !granted g.any_bytes;
                                if SSet.mem d w.opened || SSet.mem "*" w.opened then begin
                                  open_best := max !open_best g.any_bytes;
                                  if g.rw_bytes > 0 then
                                    open_best_rw := max !open_best_rw g.rw_bytes
                                end)
                          state;
                        if !granted < 0 then
                          add
                            (Report.make ~pass:"coverage" ~severity:Report.High
                               ~plane:Report.Static ~component:c.Ir.name
                               ~detail:
                                 (Printf.sprintf
                                    "%s passes %s to %s (arg %d) with no window grant \
                                     covering it (accessor %s)"
                                    here b sym j d)
                               ~key:
                                 (Printf.sprintf "coverage:no-grant:%s:%s:%d:%s" here sym j d))
                        else if !open_best < 0 then
                          add
                            (Report.make ~pass:"coverage" ~severity:Report.High
                               ~plane:Report.Static ~component:c.Ir.name
                               ~detail:
                                 (Printf.sprintf
                                    "%s passes %s to %s (arg %d) but no covering window \
                                     is open for accessor %s"
                                    here b sym j d)
                               ~key:
                                 (Printf.sprintf "coverage:not-open:%s:%s:%d:%s" here sym j d))
                        else begin
                          if needed > 0 && !open_best < needed then
                            add
                              (Report.make ~pass:"coverage" ~severity:Report.High
                                 ~plane:Report.Static ~component:c.Ir.name
                                 ~detail:
                                   (Printf.sprintf
                                      "%s passes %s to %s (arg %d): grant covers %d of %d \
                                       bytes — %s faults at byte %d"
                                      here b sym j !open_best needed d !open_best)
                                 ~key:
                                   (Printf.sprintf "coverage:partial:%s:%s:%d:%s" here sym j d));
                          (* permission check: a write-accessor needs the
                             span reachable through RW grants; an R-only
                             path is the silent write-through-RO hole
                             (read-first retag means MPK never faults) *)
                          if
                            SSet.mem d waccs
                            && (!open_best_rw < 0
                               || (needed > 0 && !open_best_rw < needed))
                          then
                            add
                              (Report.make ~pass:"coverage" ~severity:Report.Critical
                                 ~plane:Report.Static ~component:c.Ir.name
                                 ~detail:
                                   (Printf.sprintf
                                      "%s passes %s to %s (arg %d) which %s writes, but \
                                       the covering grant is read-only%s — the write \
                                       never faults after a read-first retag"
                                      here b sym j d
                                      (if !open_best_rw < 0 then ""
                                       else
                                         Printf.sprintf " past byte %d of %d" !open_best_rw
                                           needed))
                                 ~key:
                                   (Printf.sprintf "coverage:ro-write:%s:%s:%d:%s" here sym j d))
                        end)
                      accs)
              ptr_args
      in
      let rec exec here (state : state) stmts =
        List.fold_left
          (fun (state : state) (s : Iface.stmt) ->
            match s with
            | Iface.Alloc _ | Iface.Direct_call _ -> state
            | Iface.Call { sym; ptr_args } ->
                check_call state here sym ptr_args;
                state
            | Iface.Window_add { win; buf = Iface.Local b; bytes; rw; _ } ->
                let size =
                  if bytes > 0 then bytes
                  else Option.value ~default:0 (Hashtbl.find_opt sizes b)
                in
                if rw then Hashtbl.replace rw_grant_sites (win, b) here;
                let w =
                  Option.value
                    ~default:{ grants = SMap.empty; opened = SSet.empty }
                    (SMap.find_opt win state)
                in
                let prev =
                  Option.value ~default:{ any_bytes = 0; rw_bytes = 0 }
                    (SMap.find_opt b w.grants)
                in
                let g =
                  {
                    any_bytes = max size prev.any_bytes;
                    rw_bytes = (if rw then max size prev.rw_bytes else prev.rw_bytes);
                  }
                in
                SMap.add win { w with grants = SMap.add b g w.grants } state
            | Iface.Window_add _ -> state  (* Param-rooted grants: not representable *)
            | Iface.Window_remove { win; buf = Iface.Local b } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with grants = SMap.remove b w.grants } state)
            | Iface.Window_remove _ -> state
            | Iface.Window_open { win; peer } | Iface.Window_forward { win; peer } -> (
                (* a forward extends the open set exactly like an open by
                   the owner (the monitor emits it against the owner's
                   window) *)
                match SMap.find_opt win state with
                | None ->
                    SMap.add win
                      { grants = SMap.empty; opened = SSet.singleton peer }
                      state
                | Some w -> SMap.add win { w with opened = SSet.add peer w.opened } state)
            | Iface.Window_close { win; peer } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with opened = SSet.remove peer w.opened } state)
            | Iface.Window_close_all { win } -> (
                match SMap.find_opt win state with
                | None -> state
                | Some w -> SMap.add win { w with opened = SSet.empty } state)
            | Iface.Window_destroy { win } -> SMap.remove win state
            | Iface.Branch arms -> join (List.map (exec here state) arms)
            | Iface.Loop body ->
                (* body may run zero times: facts established inside are
                   checked with the state at loop entry; the exit state
                   keeps only facts true on both paths *)
                join [ state; exec here state body ])
          state stmts
      in
      (* The component's init summary establishes the entry state of
         every export: standing staging windows, registration-time
         opens. *)
      let init_state =
        match Ir.init_decl c with
        | None -> SMap.empty
        | Some fd ->
            exec (Printf.sprintf "%s.%s" c.Ir.name Ir.init_sym) SMap.empty fd.Iface.fd_body
      in
      List.iter
        (fun (fd : Iface.fundecl) ->
          if fd.Iface.fd_sym <> Ir.init_sym then
            ignore
              (exec
                 (Printf.sprintf "%s.%s" c.Ir.name fd.Iface.fd_sym)
                 init_state fd.Iface.fd_body))
        c.Ir.iface;
      (* BULKHEAD-style least-privilege lint: an RW grant whose buffer
         no external component ever writes through should have been
         granted read-only *)
      Hashtbl.iter
        (fun (win, b) here ->
          if not (Hashtbl.mem written_bufs b) then
            add
              (Report.make ~pass:"over-privilege" ~severity:Report.Medium
                 ~plane:Report.Static ~component:c.Ir.name
                 ~detail:
                   (Printf.sprintf
                      "%s grants %s through %s read-write, but no peer ever writes \
                       through it — grant R instead (least privilege)"
                      here b win)
                 ~key:(Printf.sprintf "overpriv:%s:%s/%s" c.Ir.name win b)))
        rw_grant_sites)
    p.Ir.comps;
  Report.dedup (List.rev !findings)
