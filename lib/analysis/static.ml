let run (p : Ir.program) =
  Report.sort (Report.dedup (Callgraph.check p @ Windows.check p @ Leaks.check p))

let run_built (b : Cubicle.Builder.built) = run (Ir.of_built b)
