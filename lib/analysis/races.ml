(* Window race and use-after-close detection over the telemetry event
   stream.

   Race: window grants are symmetric-access, not synchronised — two
   cubicles writing the same granted page with no happens-before edge
   between the writes have a timing-dependent interleaving. Order is
   per-core: on one core, trampoline Call/Return events and scheduler
   switches serialise everything that runs there (same-core program
   order IS a happens-before edge), so we keep a per-core "crossing"
   counter and flag a same-core write pair only when no crossing
   separates the writes. Across cores there is no such edge at all —
   the cores genuinely interleave — so two writes of the same page from
   different cores by different cubicles are always a race, crossings
   or not.

   Use-after-close: revocation is causal (paper §5.6) — closing a
   window does not retag pages the peer already faulted in, so a stale
   access after [window_close] never faults at runtime. The replay
   mirror knows the ACL state the monitor intended, so an access with
   no covering open window is exactly that silent hole. *)

type t = {
  name_of : int -> string;
  mutable seq : int;
  mutable crossings : int array;  (* per core: seq of its most recent hb edge *)
  last_write : (int, int * int * int) Hashtbl.t;  (* page -> (writer cid, seq, core) *)
  mutable findings : Report.finding list;
  seen : (string, unit) Hashtbl.t;
}

let create ~name_of =
  {
    name_of;
    seq = 0;
    crossings = [| 0 |];
    last_write = Hashtbl.create 64;
    findings = [];
    seen = Hashtbl.create 16;
  }

let add t f =
  if not (Hashtbl.mem t.seen f.Report.key) then begin
    Hashtbl.replace t.seen f.Report.key ();
    t.findings <- f :: t.findings
  end

let grow t core =
  if core >= Array.length t.crossings then begin
    let fresh = Array.make (core + 1) 0 in
    Array.blit t.crossings 0 fresh 0 (Array.length t.crossings);
    t.crossings <- fresh
  end

let crossing_of t core = if core < Array.length t.crossings then t.crossings.(core) else 0

let crossing ?(core = 0) t =
  t.seq <- t.seq + 1;
  grow t core;
  t.crossings.(core) <- t.seq

let key_alias t ~cid ~owner ~phys =
  add t
    (Report.make ~pass:"key-alias" ~severity:Report.Critical ~plane:Report.Dynamic
       ~component:(t.name_of cid)
       ~detail:
         (Printf.sprintf
            "%s reached a page of %s through physical tag %d, recycled from %s by an \
             eviction that never retagged the pages — the stale tag aliases two cubicles"
            (t.name_of cid) (t.name_of owner) phys (t.name_of owner))
       ~key:(Printf.sprintf "alias:%s->%s:%d" (t.name_of cid) (t.name_of owner) phys))

let access ?(core = 0) ?(write_allowed = true) t ~cid ~owner ~page
    ~(access : Telemetry.Event.access) ~covered =
  t.seq <- t.seq + 1;
  if not covered then
    add t
      (Report.make ~pass:"use-after-close" ~severity:Report.Critical
         ~plane:Report.Dynamic ~component:(t.name_of cid)
         ~detail:
           (Printf.sprintf
              "%s %s a page of %s with no open window covering it — causal \
               revocation never faults on the stale tag"
              (t.name_of cid)
              (match access with Telemetry.Event.Write -> "wrote" | _ -> "read")
              (t.name_of owner))
         ~key:(Printf.sprintf "uac:%s->%s" (t.name_of cid) (t.name_of owner)))
  else if access = Telemetry.Event.Write && not write_allowed then
    (* the silent half of R-only enforcement: a peer that *read* first
       holds the page at its own key (lazy trap-and-map grants full RW
       per key), so this write never faulted — only the mirror sees
       that every covering grant is read-only *)
    add t
      (Report.make ~pass:"write-through-ro" ~severity:Report.Critical
         ~plane:Report.Dynamic ~component:(t.name_of cid)
         ~detail:
           (Printf.sprintf
              "%s wrote a page of %s whose covering grants are all read-only — \
               the page was retagged on an earlier read, so MPK never faults"
              (t.name_of cid) (t.name_of owner))
         ~key:(Printf.sprintf "wro:%s->%s" (t.name_of cid) (t.name_of owner)));
  (match access with
  | Telemetry.Event.Write -> (
      (match Hashtbl.find_opt t.last_write page with
      | Some (w, wseq, wcore) when w <> cid ->
          let race detail =
            add t
              (Report.make ~pass:"race" ~severity:Report.High ~plane:Report.Dynamic
                 ~component:(t.name_of w) ~detail
                 ~key:
                   (Printf.sprintf "race:%s-%s:owner=%s" (t.name_of w) (t.name_of cid)
                      (t.name_of owner)))
          in
          if wcore <> core then
            (* cross-core: the cores interleave concurrently — no
               crossing on either core orders the two writes *)
            race
              (Printf.sprintf
                 "%s (core %d) and %s (core %d) wrote a page of %s from different \
                  cores — cross-core interleaving has no happens-before edge"
                 (t.name_of w) wcore (t.name_of cid) core (t.name_of owner))
          else if crossing_of t core <= wseq then
            race
              (Printf.sprintf
                 "%s and %s both wrote a page of %s with no trampoline crossing or \
                  scheduler switch between the writes (no happens-before edge)"
                 (t.name_of w) (t.name_of cid) (t.name_of owner))
      | _ -> ());
      Hashtbl.replace t.last_write page (cid, t.seq, core))
  | Telemetry.Event.Read | Telemetry.Event.Exec -> ())

let findings t = Report.sort (List.rev t.findings)
