(* Window race and use-after-close detection over the telemetry event
   stream.

   Race: window grants are symmetric-access, not synchronised — two
   cubicles writing the same granted page with no trampoline crossing
   between the writes have no happens-before edge, so the interleaving
   is timing-dependent. We track the last writer of each page plus a
   global "crossing" counter bumped at every trampoline Call/Return; a
   write by a different cubicle with no crossing since the previous
   write is flagged.

   Use-after-close: revocation is causal (paper §5.6) — closing a
   window does not retag pages the peer already faulted in, so a stale
   access after [window_close] never faults at runtime. The replay
   mirror knows the ACL state the monitor intended, so an access with
   no covering open window is exactly that silent hole. *)

type t = {
  name_of : int -> string;
  mutable seq : int;
  mutable crossing : int;  (* seq of the most recent Call/Return *)
  last_write : (int, int * int) Hashtbl.t;  (* page -> (writer cid, seq) *)
  mutable findings : Report.finding list;
  seen : (string, unit) Hashtbl.t;
}

let create ~name_of =
  {
    name_of;
    seq = 0;
    crossing = 0;
    last_write = Hashtbl.create 64;
    findings = [];
    seen = Hashtbl.create 16;
  }

let add t f =
  if not (Hashtbl.mem t.seen f.Report.key) then begin
    Hashtbl.replace t.seen f.Report.key ();
    t.findings <- f :: t.findings
  end

let crossing t =
  t.seq <- t.seq + 1;
  t.crossing <- t.seq

let access t ~cid ~owner ~page ~(access : Telemetry.Event.access) ~covered =
  t.seq <- t.seq + 1;
  if not covered then
    add t
      (Report.make ~pass:"use-after-close" ~severity:Report.Critical
         ~plane:Report.Dynamic ~component:(t.name_of cid)
         ~detail:
           (Printf.sprintf
              "%s %s a page of %s with no open window covering it — causal \
               revocation never faults on the stale tag"
              (t.name_of cid)
              (match access with Telemetry.Event.Write -> "wrote" | _ -> "read")
              (t.name_of owner))
         ~key:(Printf.sprintf "uac:%s->%s" (t.name_of cid) (t.name_of owner)));
  (match access with
  | Telemetry.Event.Write -> (
      (match Hashtbl.find_opt t.last_write page with
      | Some (w, wseq) when w <> cid && t.crossing <= wseq ->
          add t
            (Report.make ~pass:"race" ~severity:Report.High ~plane:Report.Dynamic
               ~component:(t.name_of w)
               ~detail:
                 (Printf.sprintf
                    "%s and %s both wrote a page of %s with no trampoline crossing \
                     between the writes (no happens-before edge)"
                    (t.name_of w) (t.name_of cid) (t.name_of owner))
               ~key:
                 (Printf.sprintf "race:%s-%s:owner=%s" (t.name_of w) (t.name_of cid)
                    (t.name_of owner)))
      | _ -> ());
      Hashtbl.replace t.last_write page (cid, t.seq))
  | Telemetry.Event.Read | Telemetry.Event.Exec -> ())

let findings t = Report.sort (List.rev t.findings)
