(** The static plane: all three passes over one IR, deduped and sorted
    by severity. *)

val run : Ir.program -> Report.finding list
val run_built : Cubicle.Builder.built -> Report.finding list
