(** Lockset/last-writer race and use-after-close state machine.

    Fed digested access records by {!Replay}: each checked cross-cubicle
    access plus whether the replay mirror shows a live, open window
    covering it. Happens-before is per core: trampoline [Call]/[Return]
    events and scheduler switches order everything on their own core
    ({!crossing}); nothing orders two different cores. *)

type t

val create : name_of:(int -> string) -> t

val crossing : ?core:int -> t -> unit
(** A trampoline Call/Return or a scheduler switch was observed on
    [core] (default 0): orders all prior accesses on that core before
    all later ones on that core. *)

val access :
  ?core:int ->
  ?write_allowed:bool ->
  t ->
  cid:int ->
  owner:int ->
  page:int ->
  access:Telemetry.Event.access ->
  covered:bool ->
  unit
(** One checked access by [cid] on [core] (default 0) to a page owned by
    [owner]. [covered] and [write_allowed] (default [true]) are the
    replay mirror's verdicts. Uncovered access → [Critical]
    use-after-close; a covered write with [write_allowed = false] —
    every covering grant is read-only, the page was retagged on an
    earlier read so MPK never faults — → [Critical] write-through-ro;
    same-page writes from two cubicles on one core with no crossing
    between them → [High] race; same-page writes from two cubicles on
    {e different} cores → [High] race unconditionally (cross-core
    interleaving has no happens-before edge). *)

val key_alias : t -> cid:int -> owner:int -> phys:int -> unit
(** [cid] reached a page of [owner] through physical tag [phys], which
    tag virtualisation evicted from [owner] and rebound to [cid] — but
    the eviction never retagged [owner]'s pages, so the recycled tag
    aliases both cubicles. Always [Critical]: a correct eviction walk
    makes this unreachable, so one firing means the scrub is broken. *)

val findings : t -> Report.finding list
