(** Lockset/last-writer race and use-after-close state machine.

    Fed digested access records by {!Replay}: each checked cross-cubicle
    access plus whether the replay mirror shows a live, open window
    covering it. Trampoline [Call]/[Return] events are the only
    happens-before edges ({!crossing}). *)

type t

val create : name_of:(int -> string) -> t
val crossing : t -> unit
(** A trampoline Call or Return was observed: orders all prior accesses
    before all later ones. *)

val access :
  t ->
  cid:int ->
  owner:int ->
  page:int ->
  access:Telemetry.Event.access ->
  covered:bool ->
  unit
(** One checked access by [cid] to a page owned by [owner]. [covered] is
    the replay mirror's verdict. Uncovered access → [Critical]
    use-after-close; same-page writes from two cubicles with no crossing
    between them → [High] race. *)

val findings : t -> Report.finding list
