(** Trace replay: the dynamic plane's window-ACL mirror.

    Rebuilds every cubicle's intended window ACL state from [Window]
    telemetry events and judges each [Window_access] against it,
    feeding {!Races}. Because the mirror tracks the ACL the monitor
    {e intended} — not the lazily-retagged MPK tags — it sees exactly
    the accesses that causal revocation (paper §5.6) lets through
    silently.

    Under tag virtualisation the mirror also consumes [Key_fault_in] /
    [Key_evict] events to shadow the virtual->physical key map: an
    uncovered access whose owner lost its tag to the accessor is
    reported as a [key-alias] (recycled tag, eviction scrub skipped)
    rather than a use-after-close. *)

open Cubicle

type t

val create : name_of:(int -> string) -> t

val seed_from_monitor : t -> Monitor.t -> unit
(** Prime the mirror with the live window state (and, with
    [~virtualise], the current key residency), for traces that start
    mid-run (after boot-time grants were already emitted or dropped). *)

val feed : ?core:int -> t -> Telemetry.Event.t -> unit
(** [core] (default 0) is the simulated core the event was emitted on;
    it scopes the happens-before edges fed to {!Races}. *)

val run : t -> Telemetry.Bus.entry list -> unit
(** [run t entries] feeds each entry with its recorded core. *)

val online_sink : t -> Telemetry.Bus.entry -> unit
(** The online race gate ({!Races} judged live): attach with
    [Bus.set_sink bus (Some (Replay.online_sink t))] and the mirror
    runs concurrently with the workload instead of replaying a captured
    ring — no ring-capacity limit. Bus sinks are tracing-gated and
    charge no simulated cycles, so performance goldens are unaffected.
    Read the verdicts with {!findings} when the workload is done. *)

val findings : t -> Report.finding list

val of_bus :
  ?monitor:Monitor.t -> Telemetry.Bus.t -> name_of:(int -> string) -> Report.finding list
(** One-shot convenience: seed (optionally), replay the bus ring, return
    the findings. *)
