(** Cross-cubicle call-graph extraction and trampoline completeness.

    Proves the CFI invariant of paper §5.5 over the IR: every edge
    between distinct cubicles resolves to an installed trampoline thunk
    (and, for isolated callers, a guard entry), and no summary declares
    a direct-entry escape hatch. *)

type edge = { caller : string; callee : string; sym : string }

val edges : Ir.program -> edge list
(** All cross-component edges declared by the interface summaries
    (including calls from [__init] bodies). *)

val check : Ir.program -> Report.finding list
(** Findings: [Critical] for a missing thunk or a declared direct call,
    [High] for a missing guard entry or an unresolved symbol. *)
