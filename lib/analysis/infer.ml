(* Trace-derived interface summaries.

   The hand-written Iface summaries claim which pointer arguments each
   export dereferences and writes; the static passes trust them. This
   module closes the loop: it watches a traced run ([Call]/[Return]
   frames plus [Window_access] records) and folds the observed accesses
   into per-edge access-mode sets — "while serving export [sym],
   component [C] read/wrote pages owned by component [O]". A summary
   that claims {e less} than a trace observed is stale: the static
   planes were reasoning from a lie, so the cross-check fails the
   analyze gate exactly like a stale golden file.

   Attribution follows the trampoline frames: an access on core [k] by
   cubicle [c] belongs to the innermost open frame on [k] whose callee
   is [c]. Shared calls push no frame — shared code runs with the
   caller's privileges, so its accesses are the caller's (the same rule
   the static accessors fixpoint uses). Accesses outside any frame
   (boot-time init touching staging pages) are folded under the
   synthetic symbol [toplevel_sym] and ignored by the cross-check. *)

open Cubicle

module IMap = Map.Make (Int)

type mode = { mutable m_read : bool; mutable m_write : bool }

type t = {
  (* per-core stack of open trampoline frames: (callee cid, sym) *)
  stacks : (int, (int * string) list ref) Hashtbl.t;
  (* (actor cid, sym) -> owner cid -> observed modes *)
  obs : (int * string, mode IMap.t ref) Hashtbl.t;
}

let toplevel_sym = "<toplevel>"

let create () = { stacks = Hashtbl.create 4; obs = Hashtbl.create 64 }

let stack_of t core =
  match Hashtbl.find_opt t.stacks core with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks core s;
      s

let record t ~cid ~sym ~owner ~(access : Telemetry.Event.access) =
  let modes =
    match Hashtbl.find_opt t.obs (cid, sym) with
    | Some m -> m
    | None ->
        let m = ref IMap.empty in
        Hashtbl.replace t.obs (cid, sym) m;
        m
  in
  let m =
    match IMap.find_opt owner !modes with
    | Some m -> m
    | None ->
        let m = { m_read = false; m_write = false } in
        modes := IMap.add owner m !modes;
        m
  in
  match access with
  | Telemetry.Event.Read -> m.m_read <- true
  | Telemetry.Event.Write -> m.m_write <- true
  | Telemetry.Event.Exec -> ()

let feed ?(core = 0) t (ev : Telemetry.Event.t) =
  match ev with
  | Telemetry.Event.Call { callee; sym; _ } ->
      let s = stack_of t core in
      s := (callee, sym) :: !s
  | Telemetry.Event.Return { callee; sym; _ } -> (
      (* pop the innermost matching frame; traces can drop events at
         ring capacity, so an unmatched return is ignored *)
      let s = stack_of t core in
      match !s with
      | (c, y) :: rest when c = callee && y = sym -> s := rest
      | _ -> ())
  | Telemetry.Event.Window_access { cid; owner; access; _ } ->
      let sym =
        match List.find_opt (fun (c, _) -> c = cid) !(stack_of t core) with
        | Some (_, sym) -> sym
        | None -> toplevel_sym
      in
      record t ~cid ~sym ~owner ~access
  | _ -> ()

let sink t (e : Telemetry.Bus.entry) = feed ~core:e.Telemetry.Bus.core t e.Telemetry.Bus.ev

let run t entries =
  List.iter
    (fun (e : Telemetry.Bus.entry) -> feed ~core:e.Telemetry.Bus.core t e.Telemetry.Bus.ev)
    entries

type observation = {
  o_comp : string;
  o_sym : string;
  o_owner : string;
  o_read : bool;
  o_write : bool;
}

let observations t (p : Ir.program) =
  let name_of cid =
    match List.find_opt (fun (c : Ir.comp) -> c.Ir.cid = cid) p.Ir.comps with
    | Some c -> Some c.Ir.name
    | None -> None
  in
  Hashtbl.fold
    (fun (cid, sym) modes acc ->
      match name_of cid with
      | None -> acc
      | Some comp ->
          IMap.fold
            (fun owner m acc ->
              match name_of owner with
              | None -> acc
              | Some o ->
                  {
                    o_comp = comp;
                    o_sym = sym;
                    o_owner = o;
                    o_read = m.m_read;
                    o_write = m.m_write;
                  }
                  :: acc)
            !modes acc)
    t.obs []
  |> List.sort compare

let check t (p : Ir.program) =
  let findings = ref [] in
  List.iter
    (fun o ->
      if o.o_sym <> toplevel_sym then
        let comp = Ir.find p o.o_comp in
        let fd = Option.bind comp (fun c -> Ir.summary c o.o_sym) in
        let declared_write =
          match fd with Some fd -> fd.Iface.fd_writes <> [] | None -> false
        in
        let declared_deref =
          match fd with
          | Some fd -> fd.Iface.fd_derefs <> [] || fd.Iface.fd_writes <> []
          | None -> false
        in
        if o.o_write && not declared_write then
          findings :=
            Report.make ~pass:"summary" ~severity:Report.Critical ~plane:Report.Dynamic
              ~component:o.o_comp
              ~detail:
                (Printf.sprintf
                   "trace observed %s.%s writing %s's memory, but the interface summary \
                    declares no written pointer argument — the static planes were \
                    reasoning from a stale summary"
                   o.o_comp o.o_sym o.o_owner)
              ~key:(Printf.sprintf "summary:write:%s.%s" o.o_comp o.o_sym)
            :: !findings
        else if o.o_read && not declared_deref then
          findings :=
            Report.make ~pass:"summary" ~severity:Report.High ~plane:Report.Dynamic
              ~component:o.o_comp
              ~detail:
                (Printf.sprintf
                   "trace observed %s.%s reading %s's memory, but the interface summary \
                    declares no dereferenced pointer argument"
                   o.o_comp o.o_sym o.o_owner)
              ~key:(Printf.sprintf "summary:read:%s.%s" o.o_comp o.o_sym)
            :: !findings)
    (observations t p);
  Report.dedup (List.rev !findings)

let of_bus bus (p : Ir.program) =
  let t = create () in
  run t (Telemetry.Bus.events bus);
  check t p
