open Cubicle

type edge = { caller : string; callee : string; sym : string }

let rec stmt_calls acc (s : Iface.stmt) =
  match s with
  | Iface.Call { sym; _ } -> `Call sym :: acc
  | Iface.Direct_call { sym } -> `Direct sym :: acc
  | Iface.Branch arms -> List.fold_left (List.fold_left stmt_calls) acc arms
  | Iface.Loop body -> List.fold_left stmt_calls acc body
  | _ -> acc

let decl_calls (fd : Iface.fundecl) =
  List.rev (List.fold_left stmt_calls [] fd.Iface.fd_body)

let edges (p : Ir.program) =
  List.concat_map
    (fun (c : Ir.comp) ->
      List.concat_map
        (fun fd ->
          List.filter_map
            (fun call ->
              let sym = match call with `Call s | `Direct s -> s in
              match Ir.owner_of p sym with
              | Some o when o.Ir.name <> c.Ir.name ->
                  Some { caller = c.Ir.name; callee = o.Ir.name; sym }
              | _ -> None)
            (decl_calls fd))
        c.Ir.iface)
    p.Ir.comps

(* Trampoline completeness (paper §5.5): every cross-cubicle edge into
   an isolated or trusted component must resolve to an installed thunk,
   and isolated callers additionally need their guard entry — the only
   legal way into a thunk under the exec-follows-access modification.
   Direct calls bypassing the symbol table are flagged unconditionally:
   they are exactly the CFI escape hatch the trampolines exist to
   close. *)
let check (p : Ir.program) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (c : Ir.comp) ->
      List.iter
        (fun fd ->
          let here = Printf.sprintf "%s.%s" c.Ir.name fd.Iface.fd_sym in
          List.iter
            (function
              | `Direct sym ->
                  add
                    (Report.make ~pass:"trampoline" ~severity:Report.Critical
                       ~plane:Report.Static ~component:c.Ir.name
                       ~detail:
                         (Printf.sprintf "%s calls %s directly, bypassing the trampoline"
                            here sym)
                       ~key:(Printf.sprintf "trampoline:direct:%s:%s" here sym))
              | `Call sym -> (
                  match Ir.owner_of p sym with
                  | None ->
                      add
                        (Report.make ~pass:"trampoline" ~severity:Report.High
                           ~plane:Report.Static ~component:c.Ir.name
                           ~detail:
                             (Printf.sprintf "%s calls unresolved symbol %s" here sym)
                           ~key:(Printf.sprintf "trampoline:unresolved:%s:%s" here sym))
                  | Some o when o.Ir.name = c.Ir.name -> ()
                  | Some o -> (
                      match o.Ir.kind with
                      | Types.Shared -> ()
                      | Types.Isolated | Types.Trusted ->
                          if not (p.Ir.has_thunk sym) then
                            add
                              (Report.make ~pass:"trampoline" ~severity:Report.Critical
                                 ~plane:Report.Static ~component:c.Ir.name
                                 ~detail:
                                   (Printf.sprintf
                                      "%s -> %s.%s has no trampoline thunk installed" here
                                      o.Ir.name sym)
                                 ~key:(Printf.sprintf "trampoline:no-thunk:%s:%s" here sym))
                          else if
                            c.Ir.kind = Types.Isolated && not (p.Ir.has_guard c.Ir.cid sym)
                          then
                            add
                              (Report.make ~pass:"trampoline" ~severity:Report.High
                                 ~plane:Report.Static ~component:c.Ir.name
                                 ~detail:
                                   (Printf.sprintf
                                      "%s -> %s.%s has a thunk but no guard entry for the \
                                       caller"
                                      here o.Ir.name sym)
                                 ~key:(Printf.sprintf "trampoline:no-guard:%s:%s" here sym)))))
            (decl_calls fd))
        c.Ir.iface)
    p.Ir.comps;
  Report.dedup (List.rev !findings)
