(** CubiCheck's program IR: what the static passes see.

    Extracted from a {!Cubicle.Builder.built} system — component
    identities and kinds from the monitor, the export symbol table, the
    trampoline installation, and each component's {!Cubicle.Iface}
    summary — or synthesised directly for tests. *)

open Cubicle

type comp = {
  name : string;
  cid : Types.cid;
  kind : Types.kind;
  exports : string list;
  iface : Iface.t;
}

type program = {
  comps : comp list;
  has_thunk : string -> bool;  (** trampoline thunk installed for symbol *)
  has_guard : Types.cid -> string -> bool;
      (** guard entry installed for (caller cubicle, symbol) *)
}

val init_sym : string
(** ["__init"]: the pseudo-export naming a component's initialisation
    summary. Its window facts become the entry state of every real
    export (standing staging buffers, registration-time opens). *)

val find : program -> string -> comp option
val owner_of : program -> string -> comp option
(** The component exporting a symbol (the namespace is flat). *)

val summary : comp -> string -> Iface.fundecl option
val init_decl : comp -> Iface.fundecl option

val of_built : Builder.built -> program

val make :
  ?missing_thunks:string list ->
  ?missing_guards:(string * string) list ->
  (string * Types.kind * string list * Iface.t) list ->
  program
(** Synthetic program: [(name, kind, exports, iface)] per component,
    cids assigned in order from 1. Trampoline coverage is simulated
    (complete for isolated/trusted exports) minus the explicitly
    missing thunks / (component, sym) guards — the injection points for
    seeded violations. *)
