(** Window-leak pass (may-analysis).

    Flags grants ([Window_add]) with no matching [Window_remove] or
    [Window_destroy] on some path before the export returns. Grants
    declared [standing] (deliberate long-lived staging windows) are
    exempt. [High] when the grant survives every path, [Medium] when
    only some; read-only grants are demoted one severity ([Medium] /
    [Info]) — a leaked R grant discloses the buffer but cannot corrupt
    it, so RW leaks always report above R leaks. Applies to [__init]
    bodies too. *)

val check : Ir.program -> Report.finding list
