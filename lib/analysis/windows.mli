(** Window-coverage dataflow (must-analysis).

    For every pointer argument a component passes across a cubicle
    boundary, prove that — on all paths — a window grant of sufficient
    size is live and open for every component that may dereference the
    pointer (computed by an interprocedural accessors fixpoint over the
    interface summaries). [Branch] joins by intersection; [Loop] bodies
    are analysed with the loop-entry state and may run zero times. *)

val accessors : Ir.program -> string -> int -> Set.Make(String).t
(** [accessors p sym idx]: components that may dereference argument
    [idx] of export [sym], transitively through pointer forwarding.
    Forwarding to shared code attributes the dereference to the
    forwarder (shared code runs with the caller's privileges). *)

val check : Ir.program -> Report.finding list
(** Findings (all [High], static, pass ["coverage"]):
    [no-grant] — no live window grants the buffer at all;
    [not-open] — granted but never opened for an accessor;
    [partial] — open grant smaller than the bytes the callee touches. *)
