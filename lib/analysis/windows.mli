(** Window-coverage dataflow (must-analysis), permission-aware.

    For every pointer argument a component passes across a cubicle
    boundary, prove that — on all paths — a window grant of sufficient
    size is live and open for every component that may dereference the
    pointer (computed by an interprocedural accessors fixpoint over the
    interface summaries), and that every component that may {e write}
    through the pointer reaches it via an RW grant. [Branch] joins by
    intersection; [Loop] bodies are analysed with the loop-entry state
    and may run zero times. *)

val accessors : Ir.program -> string -> int -> Set.Make(String).t
(** [accessors p sym idx]: components that may dereference argument
    [idx] of export [sym], transitively through pointer forwarding.
    Forwarding to shared code attributes the dereference to the
    forwarder (shared code runs with the caller's privileges). *)

val write_accessors : Ir.program -> string -> int -> Set.Make(String).t
(** Same fixpoint seeded from [fd_writes] only: components that may
    write through the argument. A forward into shared code counts only
    when the shared declaration writes that position (memcpy writes
    arg 0, merely reads arg 1). *)

val check : Ir.program -> Report.finding list
(** Coverage findings (static, pass ["coverage"]):
    [no-grant] ([High]) — no live window grants the buffer at all;
    [not-open] ([High]) — granted but never opened for an accessor;
    [partial] ([High]) — open grant smaller than the bytes touched;
    [ro-write] ([Critical]) — a write-accessor reaches the buffer but
    every covering grant is read-only: under lazy trap-and-map the page
    is retagged on the accessor's first read, so the write never faults
    at runtime.

    Least-privilege lint (static, pass ["over-privilege"], [Medium]):
    an RW grant of a local buffer that no external component ever
    writes through — it should have been granted [R]. *)
