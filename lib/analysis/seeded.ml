open Cubicle

(* Deliberately-broken examples, one per detector. Each scenario names
   the pass and severity it must trip; the bench `analyze` command and
   the test suite both assert that CubiCheck catches every one. The
   static four are synthetic IR programs; the dynamic five run real
   monitor workloads under tracing, judged by replay or by the online
   bus sink. *)

type scenario = {
  sc_name : string;
  expect_pass : string;
  expect_severity : Report.severity;
  findings : Report.finding list;
}

let caught sc =
  List.exists
    (fun f -> f.Report.pass = sc.expect_pass && f.Report.severity = sc.expect_severity)
    sc.findings

(* 1. A cross-cubicle call with no trampoline thunk installed: the CFI
   escape hatch of paper §5.5. *)
let missing_trampoline () =
  let p =
    Ir.make ~missing_thunks:[ "srv_process" ]
      [
        ( "CLIENT",
          Types.Isolated,
          [ "client_main" ],
          [ Iface.fundecl "client_main" [ Iface.Call { sym = "srv_process"; ptr_args = [] } ] ] );
        ( "SERVER",
          Types.Isolated,
          [ "srv_process" ],
          [ Iface.fundecl ~derefs:[] "srv_process" [] ] );
      ]
  in
  {
    sc_name = "missing-trampoline";
    expect_pass = "trampoline";
    expect_severity = Report.Critical;
    findings = Static.run p;
  }

(* 2. A pointer argument crossing the boundary with no window grant
   covering it: the callee faults on first dereference. *)
let uncovered_pointer () =
  let p =
    Ir.make
      [
        ( "CLIENT",
          Types.Isolated,
          [ "client_main" ],
          [
            Iface.fundecl "client_main"
              [
                Iface.Alloc { buf = "req"; bytes = 128 };
                Iface.Call
                  { sym = "srv_process"; ptr_args = [ (0, Iface.Local "req", 128) ] };
              ];
          ] );
        ( "SERVER",
          Types.Isolated,
          [ "srv_process" ],
          [ Iface.fundecl ~derefs:[ 0 ] "srv_process" [] ] );
      ]
  in
  {
    sc_name = "uncovered-pointer";
    expect_pass = "coverage";
    expect_severity = Report.High;
    findings = Static.run p;
  }

(* 3. A grant with no matching remove on any path: the server keeps
   access to the client's buffer after the call returns. *)
let leaked_window () =
  let p =
    Ir.make
      [
        ( "CLIENT",
          Types.Isolated,
          [ "client_main" ],
          [
            Iface.fundecl "client_main"
              [
                Iface.Alloc { buf = "req"; bytes = 128 };
                Iface.Window_add
                  { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = true };
                Iface.Window_open { win = "w"; peer = "SERVER" };
                Iface.Call
                  { sym = "srv_process"; ptr_args = [ (0, Iface.Local "req", 128) ] };
                Iface.Window_close { win = "w"; peer = "SERVER" };
                (* missing: Window_remove / Window_destroy *)
              ];
          ] );
        ( "SERVER",
          Types.Isolated,
          [ "srv_process" ],
          (* writes: the RW grant is justified, so only the leak fires *)
          [ Iface.fundecl ~derefs:[ 0 ] ~writes:[ 0 ] "srv_process" [] ] );
      ]
  in
  {
    sc_name = "leaked-window";
    expect_pass = "leak";
    expect_severity = Report.High;
    findings = Static.run p;
  }

(* 4. A callee that writes through a pointer argument whose covering
   grant is read-only. Statically provable: lazy trap-and-map retags
   the page on the callee's first *read*, so the later write never
   faults — the analyzer is the only thing that can see it. *)
let ro_write () =
  let p =
    Ir.make
      [
        ( "CLIENT",
          Types.Isolated,
          [ "client_main" ],
          [
            Iface.fundecl "client_main"
              [
                Iface.Alloc { buf = "req"; bytes = 128 };
                Iface.Window_add
                  { win = "w"; buf = Iface.Local "req"; bytes = 128; standing = false; rw = false };
                Iface.Window_open { win = "w"; peer = "SERVER" };
                Iface.Call
                  { sym = "srv_fill"; ptr_args = [ (0, Iface.Local "req", 128) ] };
                Iface.Window_remove { win = "w"; buf = Iface.Local "req" };
              ];
          ] );
        ( "SERVER",
          Types.Isolated,
          [ "srv_fill" ],
          [ Iface.fundecl ~derefs:[ 0 ] ~writes:[ 0 ] "srv_fill" [] ] );
      ]
  in
  {
    sc_name = "write-through-ro-static";
    expect_pass = "coverage";
    expect_severity = Report.Critical;
    findings = Static.run p;
  }

(* Dynamic scenarios: a real monitor under Full protection, tracing
   on, replayed through the mirror. *)

let mk_dynamic ?ncores () =
  let mon = Monitor.create ?ncores ~protection:Types.Full () in
  let a = Monitor.create_cubicle mon ~name:"OWNER" ~kind:Types.Isolated ~heap_pages:8 ~stack_pages:2 in
  let b = Monitor.create_cubicle mon ~name:"PEER1" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1 in
  let c = Monitor.create_cubicle mon ~name:"PEER2" ~kind:Types.Isolated ~heap_pages:4 ~stack_pages:1 in
  let bus = Monitor.bus mon in
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_tracing bus true;
  (mon, a, b, c, bus)

let replay_bus mon bus =
  Telemetry.Bus.set_tracing bus false;
  Replay.of_bus bus ~name_of:(Monitor.cubicle_name mon)

(* 5. Two peers write the same granted page with no trampoline crossing
   between the writes: no happens-before edge, a window race. *)
let write_race () =
  let mon, a, b, c, bus = mk_dynamic () in
  let actx = Monitor.ctx_for mon a in
  let buf =
    Monitor.run_as mon a (fun () -> Api.malloc_page_aligned actx Hw.Addr.page_size)
  in
  Monitor.run_as mon a (fun () ->
      let wid = Api.window_init actx ~klass:Mm.Page_meta.Heap in
      Api.window_add actx wid ~ptr:buf ~size:Hw.Addr.page_size;
      Api.window_open actx wid b;
      Api.window_open actx wid c);
  Monitor.run_as mon b (fun () -> Api.write_u8 (Monitor.ctx_for mon b) buf 0x11);
  Monitor.run_as mon c (fun () -> Api.write_u8 (Monitor.ctx_for mon c) buf 0x22);
  {
    sc_name = "write-race";
    expect_pass = "race";
    expect_severity = Report.High;
    findings = replay_bus mon bus;
  }

(* 6. A peer writes after the owner closed the window: under causal
   revocation (§5.6) the page still carries the peer's tag, so the
   write never faults — only the replay mirror sees it. *)
let use_after_close () =
  let mon, a, b, _c, bus = mk_dynamic () in
  let actx = Monitor.ctx_for mon a in
  let buf =
    Monitor.run_as mon a (fun () -> Api.malloc_page_aligned actx Hw.Addr.page_size)
  in
  let wid =
    Monitor.run_as mon a (fun () ->
        let wid = Api.window_init actx ~klass:Mm.Page_meta.Heap in
        Api.window_add actx wid ~ptr:buf ~size:Hw.Addr.page_size;
        Api.window_open actx wid b;
        wid)
  in
  (* first write faults, trap-and-map retags the page to PEER1 *)
  Monitor.run_as mon b (fun () -> Api.write_u8 (Monitor.ctx_for mon b) buf 0x33);
  Monitor.run_as mon a (fun () -> Api.window_close actx wid b);
  (* stale-tag write: succeeds silently at runtime *)
  Monitor.run_as mon b (fun () -> Api.write_u8 (Monitor.ctx_for mon b) buf 0x44);
  {
    sc_name = "use-after-close";
    expect_pass = "use-after-close";
    expect_severity = Report.Critical;
    findings = replay_bus mon bus;
  }

(* 7. Two peers write the same granted page from different cores. A
   trampoline crossing separates the writes — on one core that is a
   happens-before edge and would suppress the race (scenario 4 relies
   on exactly that rule) — but the cores interleave concurrently, so
   the cross-core pair must be flagged regardless. *)
let cross_core_race () =
  let mon, a, b, c, bus = mk_dynamic ~ncores:2 () in
  Monitor.register_exports mon a
    [ { Monitor.sym = "own_sync"; fn = (fun _ _ -> 0); stack_bytes = 0 } ];
  let actx = Monitor.ctx_for mon a in
  let buf =
    Monitor.run_as mon a (fun () -> Api.malloc_page_aligned actx Hw.Addr.page_size)
  in
  Monitor.run_as mon a (fun () ->
      let wid = Api.window_init actx ~klass:Mm.Page_meta.Heap in
      Api.window_add actx wid ~ptr:buf ~size:Hw.Addr.page_size;
      Api.window_open actx wid b;
      Api.window_open actx wid c);
  (* core 0: PEER1 writes, then a trampoline crossing *)
  Monitor.run_as mon b (fun () -> Api.write_u8 (Monitor.ctx_for mon b) buf 0x55);
  ignore (Monitor.call mon ~caller:b "own_sync" [||]);
  (* core 1: PEER2 writes — same-core, the crossing would clear it *)
  Hw.Cpu.set_core (Monitor.cpu mon) 1;
  Monitor.run_as mon c (fun () -> Api.write_u8 (Monitor.ctx_for mon c) buf 0x66);
  Hw.Cpu.set_core (Monitor.cpu mon) 0;
  {
    sc_name = "cross-core-race";
    expect_pass = "race";
    expect_severity = Report.High;
    findings = replay_bus mon bus;
  }

(* 8. The dynamic twin of scenario 4, caught by the *online* sink: the
   peer reads first (trap-and-map retags the page to the peer's key,
   which grants full RW), then writes through the R-only grant — MPK
   never faults, only the live mirror attached to the bus sees it. *)
let write_through_ro () =
  let mon, a, b, _c, bus = mk_dynamic () in
  let mirror = Replay.create ~name_of:(Monitor.cubicle_name mon) in
  Telemetry.Bus.set_sink bus (Some (Replay.online_sink mirror));
  let actx = Monitor.ctx_for mon a in
  let buf =
    Monitor.run_as mon a (fun () -> Api.malloc_page_aligned actx Hw.Addr.page_size)
  in
  Monitor.run_as mon a (fun () ->
      let wid = Api.window_init actx ~klass:Mm.Page_meta.Heap in
      Api.window_add actx ~perm:Window.R wid ~ptr:buf ~size:Hw.Addr.page_size;
      Api.window_open actx wid b);
  (* first access is a READ: trap-and-map retags the page to PEER1 *)
  ignore (Monitor.run_as mon b (fun () -> Api.read_u8 (Monitor.ctx_for mon b) buf));
  (* the write through the R-only grant succeeds silently at runtime *)
  Monitor.run_as mon b (fun () -> Api.write_u8 (Monitor.ctx_for mon b) buf 0x77);
  Telemetry.Bus.set_sink bus None;
  Telemetry.Bus.set_tracing bus false;
  {
    sc_name = "write-through-ro-online";
    expect_pass = "write-through-ro";
    expect_severity = Report.Critical;
    findings = Replay.findings mirror;
  }

(* 9. Tag virtualisation with the eviction scrub skipped: OWNER's
   physical tag is evicted and recycled to ACCESSOR, but (in the buggy
   world this scenario simulates) OWNER's pages were never retagged —
   so ACCESSOR's own tag now opens OWNER's memory and MPK cannot fault.
   The real keymux does retag, so the access itself is synthesized as a
   raw [Window_access] on the bus; the eviction/fault-in telemetry
   around it is genuine, and the replay mirror's key plane connects the
   two into a key-alias verdict. *)
let key_alias () =
  let mon = Monitor.create ~virtualise:true ~protection:Types.Full () in
  let bus = Monitor.bus mon in
  Telemetry.Bus.clear_ring bus;
  Telemetry.Bus.set_tracing bus true;
  let mk name =
    Monitor.create_cubicle mon ~name ~kind:Types.Isolated ~heap_pages:2 ~stack_pages:1
  in
  (* OWNER binds first; 13 fillers occupy the rest of the 14-tag pool;
     ACCESSOR's fault-in then evicts the LRU resident — OWNER — and
     recycles its tag. *)
  let owner = mk "OWNER" in
  for i = 1 to 13 do
    ignore (mk (Printf.sprintf "FILLER%d" i))
  done;
  let accessor = mk "ACCESSOR" in
  ignore (Monitor.cubicle_key mon accessor);
  let page = Hw.Addr.page_of (Monitor.stack_base mon owner) in
  Telemetry.Bus.emit bus
    (Telemetry.Event.Window_access
       { cid = accessor; owner; page; access = Telemetry.Event.Read });
  {
    sc_name = "key-alias";
    expect_pass = "key-alias";
    expect_severity = Report.Critical;
    findings = replay_bus mon bus;
  }

let all () =
  [
    missing_trampoline ();
    uncovered_pointer ();
    leaked_window ();
    ro_write ();
    write_race ();
    use_after_close ();
    cross_core_race ();
    write_through_ro ();
    key_alias ();
  ]
